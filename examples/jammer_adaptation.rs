//! Sub-channel selection under a tone jammer (the Fig. 9 mechanism,
//! interactive form).
//!
//! An "Audacity" jammer plays pure tones on a growing number of data
//! sub-channels. Without selection the modem's BER climbs with each
//! jammed tone; with the probe-driven selection it hops to clean bins
//! and holds a low BER.
//!
//! ```text
//! cargo run -p wearlock-examples --bin jammer_adaptation
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wearlock_acoustics::channel::AcousticLink;
use wearlock_acoustics::noise::NoiseModel;
use wearlock_dsp::units::{Meters, Spl};
use wearlock_modem::config::OfdmConfig;
use wearlock_modem::constellation::Modulation;
use wearlock_modem::demodulator::bit_error_rate;
use wearlock_modem::subchannel::{apply_selection, select_data_channels};
use wearlock_modem::{OfdmDemodulator, OfdmModulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = OfdmConfig::default();
    let mut rng = StdRng::seed_from_u64(9);
    let payload: Vec<bool> = (0..240).map(|_| rng.gen()).collect();

    println!("jammed tones | BER (fixed channels) | BER (sub-channel selection)");
    println!("-------------+----------------------+----------------------------");
    for n_jammed in 0..=6usize {
        // The jammer picks random *data* channels each round.
        let mut bins = cfg.data_channels().to_vec();
        for i in (1..bins.len()).rev() {
            bins.swap(i, rng.gen_range(0..=i));
        }
        let jammed: Vec<usize> = bins.into_iter().take(n_jammed).collect();
        let noise = NoiseModel::Mixture(vec![
            NoiseModel::White { spl: Spl(20.0) },
            NoiseModel::Tones {
                freqs: jammed.iter().map(|&k| cfg.channel_frequency(k)).collect(),
                spl: if jammed.is_empty() {
                    Spl(-100.0)
                } else {
                    Spl(58.0)
                },
            },
        ]);
        let link = AcousticLink::builder()
            .distance(Meters(0.15))
            .noise(noise)
            .build()?;

        // Fixed assignment.
        let tx = OfdmModulator::new(cfg.clone())?;
        let rx = OfdmDemodulator::new(cfg.clone())?;
        let rec = link.transmit(
            &tx.modulate(&payload, Modulation::Qpsk)?,
            Spl(68.0),
            &mut rng,
        );
        let fixed = rx
            .demodulate(&rec, Modulation::Qpsk, payload.len())
            .map(|r| bit_error_rate(&payload, &r.bits))
            .unwrap_or(0.5);

        // Probe → rank noise → reselect → transmit.
        let probe_rec = link.transmit(&tx.probe(2)?, Spl(68.0), &mut rng);
        let adaptive = match rx.analyze_probe(&probe_rec) {
            Ok(report) => {
                let sel = select_data_channels(&cfg, &report.noise_spectrum, 12)?;
                let cfg2 = apply_selection(&cfg, &sel)?;
                let tx2 = OfdmModulator::new(cfg2.clone())?;
                let rx2 = OfdmDemodulator::new(cfg2)?;
                let rec2 = link.transmit(
                    &tx2.modulate(&payload, Modulation::Qpsk)?,
                    Spl(68.0),
                    &mut rng,
                );
                rx2.demodulate(&rec2, Modulation::Qpsk, payload.len())
                    .map(|r| bit_error_rate(&payload, &r.bits))
                    .unwrap_or(0.5)
            }
            Err(_) => 0.5,
        };
        println!("{n_jammed:12} | {fixed:20.4} | {adaptive:26.4}");
    }
    println!("\n(jammer: up to 6 simultaneous tones at 58 dB SPL, QPSK, 15 cm)");
    Ok(())
}
