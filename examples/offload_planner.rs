//! Offloading economics (the §V trade-off, Figs. 6/10 interactive).
//!
//! Prices the unlock pipeline's DSP on every device and link
//! combination, shows when shipping the audio to the phone beats
//! computing on the watch, and what it does to each battery.
//!
//! ```text
//! cargo run -p wearlock-examples --bin offload_planner
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use wearlock::config::ExecutionPlan;
use wearlock::offload::{choose_plan, step_cost};
use wearlock_platform::device::{DeviceModel, Workload};
use wearlock_platform::link::WirelessLink;

fn main() {
    let watch = DeviceModel::moto360();
    let phones = [DeviceModel::nexus6(), DeviceModel::galaxy_nexus()];
    let links = [WirelessLink::wifi(), WirelessLink::bluetooth()];
    let mut rng = StdRng::seed_from_u64(5);

    // One unlock's worth of DSP over a trimmed ~0.25 s recording.
    let audio_samples = 11_000;
    let pipeline = Workload::combined(&[
        Workload::CrossCorrelation {
            signal_len: audio_samples,
            template_len: 256,
        },
        Workload::Fft {
            size: 256,
            count: 10,
        },
        Workload::OfdmDemod {
            blocks: 7,
            fft_size: 256,
            cp_len: 128,
        },
    ]);

    println!("pipeline: xcorr + probe FFTs + 7-block OFDM demod over {audio_samples} samples\n");

    let local = step_cost(
        ExecutionPlan::LocalOnWatch,
        &pipeline,
        audio_samples,
        &phones[0],
        &watch,
        &links[0],
        &mut rng,
    );
    println!(
        "local on {:12}  : {:6.1} ms, watch {:6.2} mJ",
        watch.name(),
        local.time.value() * 1e3,
        local.watch_energy_j * 1e3
    );

    for phone in &phones {
        for link in &links {
            let cost = step_cost(
                ExecutionPlan::OffloadToPhone,
                &pipeline,
                audio_samples,
                phone,
                &watch,
                link,
                &mut rng,
            );
            let plan = choose_plan(&pipeline, audio_samples, phone, &watch, link);
            println!(
                "offload {:12} via {:9}: {:6.1} ms, watch {:6.2} mJ, phone {:6.2} mJ  (planner: {:?})",
                phone.name(),
                link.transport().to_string(),
                cost.time.value() * 1e3,
                cost.watch_energy_j * 1e3,
                cost.phone_energy_j * 1e3,
                plan
            );
        }
    }

    println!(
        "\nwatch battery: {} Wh — one local unlock costs {:.4}% of it",
        watch.battery_wh(),
        watch.battery_fraction(local.watch_energy_j) * 100.0
    );

    // A day in the life: ~47 unlocks, some resolved by the filters.
    use wearlock::battery::{daily_comparison, UsageProfile};
    let profile = UsageProfile::default();
    let (day_local, day_offload) = daily_comparison(&profile);
    println!(
        "\ndaily projection ({} unlocks, {} acoustic rounds after filters):",
        profile.unlocks_per_day, day_local.acoustic_rounds
    );
    println!(
        "  local on watch : {:6.1} J/day = {:.3}% of the watch battery",
        day_local.watch_j_per_day,
        day_local.watch_battery_per_day * 100.0
    );
    println!(
        "  offloaded      : {:6.1} J/day = {:.3}% of the watch battery",
        day_offload.watch_j_per_day,
        day_offload.watch_battery_per_day * 100.0
    );
}
