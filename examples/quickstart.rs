//! Quickstart: one automatic unlock, start to finish.
//!
//! Runs the full WearLock protocol — wireless gate, motion filter,
//! acoustic channel probing, adaptive modulation, OFDM token exchange,
//! HOTP verification — in a simulated office with the phone and watch
//! 30 cm apart, and prints the decision with its delay breakdown.
//!
//! ```text
//! cargo run -p wearlock-examples --bin quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use wearlock::config::WearLockConfig;
use wearlock::environment::Environment;
use wearlock::session::{Outcome, UnlockPath, UnlockSession};

fn main() -> Result<(), wearlock::WearLockError> {
    let config = WearLockConfig::default();
    let mut session = UnlockSession::new(config)?;
    let env = Environment::default();
    let mut rng = StdRng::seed_from_u64(2017);

    println!("WearLock quickstart — office, 0.3 m, line of sight\n");
    let report = session.attempt(&env, &mut rng);

    match report.outcome {
        Outcome::Unlocked(UnlockPath::Acoustic(mode)) => {
            println!("UNLOCKED via acoustic token ({mode})");
        }
        Outcome::Unlocked(UnlockPath::MotionSkip) => {
            println!("UNLOCKED via motion similarity (acoustics skipped)");
        }
        Outcome::Denied(reason) => println!("DENIED: {reason:?}"),
    }

    println!("\ntotal delay: {:.0} ms", report.total_delay.value() * 1e3);
    for (label, t) in &report.delays {
        println!("  {label:<28} {:7.1} ms", t.value() * 1e3);
    }
    if let Some(v) = report.volume {
        println!("\ntransmit volume : {v}");
    }
    if let (Some(psnr), Some(ebn0)) = (report.psnr, report.ebn0) {
        println!("probed pilot SNR: {psnr}   ->  Eb/N0 {ebn0}");
    }
    if let Some(ber) = report.measured_ber {
        println!("raw channel BER : {ber:.4} (over the coded token bits)");
    }
    if let Some(dtw) = report.dtw_score {
        println!("motion DTW score: {dtw:.3}");
    }
    println!(
        "energy          : watch {:.1} mJ, phone {:.1} mJ",
        report.watch_energy_j * 1e3,
        report.phone_energy_j * 1e3
    );
    Ok(())
}
