//! A day with WearLock: the same phone/watch pair walks through the
//! scenarios the paper's introduction motivates — quiet desk work, a
//! walk between meetings, a noisy cafe, handing the phone to a
//! colleague, leaving the watch at home — and shows which filter or
//! phase decides each time.
//!
//! Also demonstrates the *live* two-thread mode where the phone and
//! watch controllers run concurrently and exchange messages.
//!
//! ```text
//! cargo run -p wearlock-examples --bin unlock_walkthrough
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use wearlock::config::WearLockConfig;
use wearlock::environment::{Environment, MotionScenario};
use wearlock::live::run_live_session;
use wearlock::session::{Outcome, UnlockPath, UnlockSession};
use wearlock_acoustics::channel::PathKind;
use wearlock_acoustics::noise::Location;
use wearlock_dsp::units::Meters;
use wearlock_sensors::Activity;

fn main() -> Result<(), wearlock::WearLockError> {
    let mut session = UnlockSession::new(WearLockConfig::default())?;
    let mut rng = StdRng::seed_from_u64(99);

    let scenarios: Vec<(&str, Environment)> = vec![
        (
            "at the desk (office, 30 cm, sitting)",
            Environment::default(),
        ),
        (
            "walking to a meeting (watch and phone on the same body)",
            Environment::builder()
                .motion(MotionScenario::CoLocated {
                    activity: Activity::Walking,
                })
                .build(),
        ),
        (
            "in a cafe (50 dB babble, 40 cm)",
            Environment::builder()
                .location(Location::Cafe)
                .distance(Meters(0.4))
                .build(),
        ),
        (
            "phone handed to a colleague walking away (victim runs)",
            Environment::builder()
                .motion(MotionScenario::Different {
                    phone: Activity::Walking,
                    watch: Activity::Running,
                })
                .distance(Meters(2.5))
                .build(),
        ),
        (
            "phone left on a table 3 m away",
            Environment::builder().distance(Meters(3.0)).build(),
        ),
        (
            "gripping the phone over its speaker",
            Environment::builder()
                .path(PathKind::BodyBlocked { block_db: 28.0 })
                .build(),
        ),
        (
            "watch left at home (no wireless link)",
            Environment::builder().wireless_in_range(false).build(),
        ),
    ];

    for (label, env) in &scenarios {
        let report = session.attempt(env, &mut rng);
        let verdict = match report.outcome {
            Outcome::Unlocked(UnlockPath::Acoustic(mode)) => {
                format!("UNLOCKED  (acoustic token, {mode})")
            }
            Outcome::Unlocked(UnlockPath::MotionSkip) => {
                "UNLOCKED  (motion match, acoustics skipped)".to_string()
            }
            Outcome::Denied(reason) => format!("locked    ({reason:?})"),
        };
        println!(
            "{label:58} -> {verdict}   [{:.0} ms]",
            report.total_delay.value() * 1e3
        );
        session.enter_pin(); // observer resets policy state between scenes
    }

    println!("\n--- live two-thread session (crossbeam channels) ---");
    let out = run_live_session(&WearLockConfig::default(), &Environment::default(), 4242)?;
    println!(
        "live session: unlocked = {}, mode = {:?}, keyguard = {:?}",
        out.unlocked, out.mode, out.final_state
    );
    Ok(())
}
