//! Shared helpers for the WearLock cross-crate integration tests.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use wearlock::config::WearLockConfig;
use wearlock::environment::Environment;
use wearlock::session::UnlockSession;

/// A seeded RNG for reproducible scenarios.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A default session, panicking on configuration errors (test-only).
pub fn default_session() -> UnlockSession {
    UnlockSession::new(WearLockConfig::default()).expect("default config is valid")
}

/// Runs `n` attempts in `env` on a fresh default session, returning the
/// number of unlocks (lockout reset between attempts).
pub fn unlock_rate(env: &Environment, n: usize, seed: u64) -> f64 {
    let mut session = default_session();
    let mut r = rng(seed);
    let mut unlocked = 0;
    for _ in 0..n {
        if session.attempt(env, &mut r).outcome.unlocked() {
            unlocked += 1;
        }
        session.enter_pin();
    }
    unlocked as f64 / n as f64
}
