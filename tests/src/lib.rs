//! Shared helpers for the WearLock cross-crate integration tests.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use wearlock::config::WearLockConfig;
use wearlock::environment::Environment;
use wearlock::session::UnlockSession;
use wearlock_runtime::SweepRunner;

/// A seeded RNG for reproducible scenarios.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A default session, panicking on configuration errors (test-only).
pub fn default_session() -> UnlockSession {
    UnlockSession::new(WearLockConfig::default()).expect("default config is valid")
}

/// Runs `n` independent attempts in `env` and returns the unlock rate.
///
/// Attempts fan out over `runner`; attempt `i` runs on a fresh default
/// session with the RNG derived from `(seed, i)`, so the rate is
/// identical for any worker count.
pub fn unlock_rate_on(env: &Environment, n: usize, seed: u64, runner: &SweepRunner) -> f64 {
    let unlocks = runner.run(n, seed, |_, r| {
        let mut session = default_session();
        usize::from(session.attempt(env, r).outcome.unlocked())
    });
    unlocks.iter().sum::<usize>() as f64 / n as f64
}

/// [`unlock_rate_on`] with one worker per CPU.
pub fn unlock_rate(env: &Environment, n: usize, seed: u64) -> f64 {
    unlock_rate_on(env, n, seed, &SweepRunner::default())
}
