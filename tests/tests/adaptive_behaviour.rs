//! Cross-crate behaviour of the adaptive machinery: modulation choice,
//! sub-channel agility, offloading and the live mode.

use wearlock::config::{ExecutionPlan, NamedConfig, WearLockConfig};
use wearlock::environment::Environment;
use wearlock::live::run_live_session;
use wearlock::session::UnlockSession;
use wearlock_acoustics::noise::Location;
use wearlock_dsp::units::Meters;
use wearlock_modem::TransmissionMode;
use wearlock_tests::rng;

#[test]
fn quiet_close_range_prefers_high_order() {
    let mut session = UnlockSession::new(WearLockConfig::default()).unwrap();
    let mut r = rng(200);
    let env = Environment::builder()
        .location(Location::QuietRoom)
        .distance(Meters(0.2))
        .build();
    let mut psk8 = 0;
    let mut trials = 0;
    for _ in 0..6 {
        let rep = session.attempt(&env, &mut r);
        if let Some(mode) = rep.mode {
            trials += 1;
            if mode == TransmissionMode::Psk8 {
                psk8 += 1;
            }
        }
        session.enter_pin();
    }
    assert!(trials > 0);
    assert!(psk8 * 2 > trials, "8PSK chosen {psk8}/{trials}");
}

#[test]
fn tighter_ber_target_downgrades_modulation() {
    let mut r = rng(201);
    let env = Environment::builder()
        .location(Location::QuietRoom)
        .distance(Meters(0.3))
        .build();

    let mode_with_target = |max_ber: f64, r: &mut rand::rngs::StdRng| {
        let config = WearLockConfig::builder().max_ber(max_ber).build().unwrap();
        let mut session = UnlockSession::new(config).unwrap();
        let mut modes = Vec::new();
        for _ in 0..4 {
            if let Some(m) = session.attempt(&env, r).mode {
                modes.push(m);
            }
            session.enter_pin();
        }
        modes
    };

    let loose = mode_with_target(0.1, &mut r);
    let tight = mode_with_target(0.01, &mut r);
    assert!(loose.contains(&TransmissionMode::Psk8), "{loose:?}");
    // 8PSK's error floor exceeds 0.01: never selectable at the tight
    // target.
    assert!(
        tight.iter().all(|m| *m != TransmissionMode::Psk8),
        "{tight:?}"
    );
}

#[test]
fn all_named_configs_unlock() {
    let mut r = rng(202);
    for named in NamedConfig::ALL {
        let config = WearLockConfig::builder().named(named).build().unwrap();
        let mut session = UnlockSession::new(config).unwrap();
        let mut ok = 0;
        for _ in 0..4 {
            if session
                .attempt(&Environment::default(), &mut r)
                .outcome
                .unlocked()
            {
                ok += 1;
            }
            session.enter_pin();
        }
        assert!(ok >= 2, "{named}: {ok}/4 unlocks");
    }
}

#[test]
fn local_plan_charges_watch_offload_charges_phone() {
    let mut r = rng(203);
    let local_cfg = WearLockConfig::builder()
        .plan(ExecutionPlan::LocalOnWatch)
        .build()
        .unwrap();
    let mut session = UnlockSession::new(local_cfg).unwrap();
    let rep = session.attempt(&Environment::default(), &mut r);
    if rep.mode.is_some() {
        assert!(
            rep.watch_energy_j > rep.phone_energy_j,
            "local plan: watch {} phone {}",
            rep.watch_energy_j,
            rep.phone_energy_j
        );
    }

    let off_cfg = WearLockConfig::builder()
        .plan(ExecutionPlan::OffloadToPhone)
        .build()
        .unwrap();
    let mut session = UnlockSession::new(off_cfg).unwrap();
    let rep = session.attempt(&Environment::default(), &mut r);
    if rep.mode.is_some() {
        assert!(
            rep.phone_energy_j > rep.watch_energy_j,
            "offload plan: watch {} phone {}",
            rep.watch_energy_j,
            rep.phone_energy_j
        );
    }
}

#[test]
fn live_two_thread_session_agrees_with_simulated() {
    let config = WearLockConfig::default();
    let out = run_live_session(&config, &Environment::default(), 777).unwrap();
    assert!(out.unlocked, "{out:?}");

    let far = Environment::builder()
        .distance(Meters(5.0))
        .location(Location::GroceryStore)
        .build();
    let out = run_live_session(&config, &far, 778).unwrap();
    assert!(!out.unlocked, "{out:?}");
}

#[test]
fn subchannel_selection_changes_channels_under_jamming() {
    use rand::Rng;
    use wearlock_acoustics::noise::NoiseModel;
    use wearlock_dsp::units::Spl;

    // Direct modem-level check through the session: jam three default
    // data channels, and the session must move off them.
    let cfg = WearLockConfig::default();
    let modem = cfg.modem().clone();
    let jammed: Vec<usize> = vec![16, 20, 24];
    let noise = NoiseModel::Mixture(vec![
        NoiseModel::White { spl: Spl(20.0) },
        NoiseModel::Tones {
            freqs: jammed.iter().map(|&k| modem.channel_frequency(k)).collect(),
            spl: Spl(55.0),
        },
    ]);
    let mut r = rng(204);
    let link = wearlock_acoustics::channel::AcousticLink::builder()
        .distance(Meters(0.15))
        .noise(noise)
        .build()
        .unwrap();
    let tx = wearlock_modem::OfdmModulator::new(modem.clone()).unwrap();
    let rx = wearlock_modem::OfdmDemodulator::new(modem.clone()).unwrap();
    let probe_rec = link.transmit(&tx.probe(2).unwrap(), Spl(68.0), &mut r);
    let report = rx.analyze_probe(&probe_rec).unwrap();
    let sel = wearlock_modem::subchannel::select_data_channels(&modem, &report.noise_spectrum, 12)
        .unwrap();
    for j in jammed {
        assert!(
            !sel.data_channels.contains(&j),
            "jammed channel {j} still selected: {:?}",
            sel.data_channels
        );
    }
    let _ = r.gen::<u8>();
}
