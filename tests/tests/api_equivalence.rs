//! The API-redesign contract: every legacy `attempt_*` entry point is
//! a thin compat wrapper over [`UnlockSession::run`], and must stay
//! *observably identical* to calling `run` with the equivalent
//! [`AttemptOptions`] — same reports (Debug-byte equality, which covers
//! every float bit), same RNG consumption, same telemetry. Plus the
//! fleet layer built on `run`: its reports and JSON documents must be
//! independent of the worker-thread count.
//!
//! [`UnlockSession`]: wearlock::session::UnlockSession
//! [`UnlockSession::run`]: wearlock::session::UnlockSession::run
//! [`AttemptOptions`]: wearlock::session::AttemptOptions

use proptest::prelude::*;

use wearlock::environment::{Environment, MotionScenario};
use wearlock::session::{AttemptOptions, AttemptSummary, RetryPolicy};
use wearlock_acoustics::channel::PathKind;
use wearlock_acoustics::noise::Location;
use wearlock_dsp::units::{Meters, Seconds};
use wearlock_faults::{FaultConfig, FaultInjector, FaultIntensity, FaultPlan};
use wearlock_fleet::{FleetConfig, FleetEngine};
use wearlock_runtime::SweepRunner;
use wearlock_sensors::Activity;
use wearlock_telemetry::MetricsRecorder;
use wearlock_tests::{default_session, rng};

const SEED: u64 = 20170605;

/// An environment assembled from proptest primitives, covering every
/// location, LOS/blocked paths (including severe blocks), both wireless
/// states and the motion scenarios the sensor filter distinguishes.
fn env_from(
    loc: u8,
    distance: f64,
    block_db: Option<f64>,
    wireless: bool,
    motion: u8,
) -> Environment {
    let location = match loc % 5 {
        0 => Location::QuietRoom,
        1 => Location::Office,
        2 => Location::ClassRoom,
        3 => Location::Cafe,
        _ => Location::GroceryStore,
    };
    let path = match block_db {
        Some(db) => PathKind::BodyBlocked { block_db: db },
        None => PathKind::LineOfSight,
    };
    let motion = match motion % 3 {
        0 => MotionScenario::CoLocated {
            activity: Activity::Sitting,
        },
        1 => MotionScenario::CoLocated {
            activity: Activity::Walking,
        },
        _ => MotionScenario::Different {
            phone: Activity::Walking,
            watch: Activity::Running,
        },
    };
    Environment::builder()
        .location(location)
        .distance(Meters(distance))
        .path(path)
        .motion(motion)
        .wireless_in_range(wireless)
        .build()
}

/// The policy `attempt_with_retries(max_retries)` promises to apply,
/// reconstructed from public fields.
fn flat_retry_policy(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts: max_retries.saturating_add(1),
        base_backoff: Seconds(0.0),
        total_budget: Seconds(f64::INFINITY),
        surrender_to_pin: false,
        ..RetryPolicy::default()
    }
}

proptest! {
    // Each case runs full acoustic attempts; a modest case count keeps
    // the suite interactive while still sweeping the env space.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn run_with_defaults_is_byte_identical_to_attempt(
        seed in any::<u64>(),
        loc in any::<u8>(),
        distance in 0.15f64..3.5,
        blocked in any::<bool>(),
        block_db in 1.0f64..20.0,
        wireless in any::<bool>(),
        motion in any::<u8>(),
    ) {
        let env = env_from(loc, distance, blocked.then_some(block_db), wireless, motion);
        let a = default_session().attempt(&env, &mut rng(seed));
        let b = default_session().run_single_check(&env, seed);
        prop_assert_eq!(format!("{a:?}"), b);
    }

    #[test]
    fn run_with_a_plan_is_byte_identical_to_attempt_faulted(
        seed in any::<u64>(),
        level in 0.0f64..=0.6,
        index in 0u64..16,
        loc in any::<u8>(),
    ) {
        let env = env_from(loc, 1.2, None, true, 0);
        let plan = FaultPlan::derive(
            &FaultConfig::new(seed ^ 0xF417, FaultIntensity::uniform(level)),
            index,
        );
        let sink_a = MetricsRecorder::new();
        let sink_b = MetricsRecorder::new();
        let a = default_session().attempt_faulted(&env, &plan, &sink_a, &mut rng(seed));
        let mut series = default_session().run(
            &env,
            &AttemptOptions::new().fault_plan(plan).sink(&sink_b),
            &mut rng(seed),
        );
        let b = series.attempts.pop().expect("single attempt");
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        prop_assert_eq!(sink_a.to_json(), sink_b.to_json());
    }
}

/// `run` without a retry policy is single-attempt; this helper mirrors
/// what the `attempt` wrapper does so the proptest above compares the
/// public `run` path, not the wrapper against itself.
trait RunSingle {
    fn run_single_check(&mut self, env: &Environment, seed: u64) -> String;
}

impl RunSingle for wearlock::session::UnlockSession {
    fn run_single_check(&mut self, env: &Environment, seed: u64) -> String {
        let mut series = self.run(env, &AttemptOptions::new(), &mut rng(seed));
        assert_eq!(series.attempts.len(), 1, "defaults must mean one attempt");
        assert_eq!(series.escalations, 0);
        assert_eq!(series.pin_delay, None);
        format!("{:?}", series.attempts.pop().expect("one attempt"))
    }
}

#[test]
fn observed_wrapper_matches_run_with_a_sink() {
    for k in 0..4u64 {
        let env = env_from(k as u8, 0.8 + 0.6 * k as f64, None, true, k as u8);
        let seed = SEED + k;
        let sink_a = MetricsRecorder::new();
        let sink_b = MetricsRecorder::new();
        let a = default_session().attempt_observed(&env, &sink_a, &mut rng(seed));
        let series =
            default_session().run(&env, &AttemptOptions::new().sink(&sink_b), &mut rng(seed));
        assert_eq!(
            format!("{a:?}"),
            format!("{:?}", series.final_attempt()),
            "env {k}"
        );
        assert_eq!(sink_a.to_json(), sink_b.to_json(), "env {k}");
    }
}

#[test]
fn retries_wrapper_matches_run_with_the_flat_policy() {
    // A blocked, distant channel so the ladder actually retries.
    let env = env_from(3, 3.0, Some(12.0), true, 0);
    for retries in [0u32, 2, 4] {
        let seed = SEED + retries as u64;
        let a = default_session().attempt_with_retries(&env, retries, &mut rng(seed));
        let b = default_session().run(
            &env,
            &AttemptOptions::new().retry_policy(flat_retry_policy(retries)),
            &mut rng(seed),
        );
        assert_eq!(a.tries(), b.tries(), "retries {retries}");
        assert_eq!(a.unlocked(), b.unlocked(), "retries {retries}");
        assert_eq!(
            a.total_delay().value().to_bits(),
            b.total_delay().value().to_bits(),
            "retries {retries}"
        );
        assert_eq!(
            format!("{:?}", a.attempts),
            format!("{:?}", b.attempts),
            "retries {retries}"
        );
    }
}

#[test]
fn resilient_wrapper_matches_run_with_injector_and_policy() {
    let env = env_from(1, 1.5, None, true, 0);
    let policy = RetryPolicy::default();
    for k in 0..3u64 {
        let seed = SEED ^ (k << 8);
        let injector = FaultInjector::new(FaultConfig::new(seed, FaultIntensity::uniform(0.35)));
        let sink_a = MetricsRecorder::new();
        let sink_b = MetricsRecorder::new();
        let a =
            default_session().attempt_resilient(&env, &injector, &policy, &sink_a, &mut rng(seed));
        let b = default_session().run(
            &env,
            &AttemptOptions::new()
                .fault_injector(injector)
                .retry_policy(policy)
                .sink(&sink_b),
            &mut rng(seed),
        );
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "case {k}");
        assert_eq!(sink_a.to_json(), sink_b.to_json(), "case {k}");
    }
}

#[test]
fn fleet_report_and_bench_json_are_worker_count_independent() {
    let config = FleetConfig {
        seed: SEED,
        users: 18,
        shards: 6,
        duration_s: 90.0,
        mean_arrival_rate_hz: 0.02,
        session_capacity: 2,
        queue_budget: 3,
        max_attempts_per_user: 6,
    };
    let run_at = |threads: usize| {
        let metrics = MetricsRecorder::new();
        let report = FleetEngine::new(config).run(&SweepRunner::new(threads), &metrics);
        (report, metrics.to_json())
    };
    let (r1, m1) = run_at(1);
    let (r8, m8) = run_at(8);
    assert_eq!(r1, r8, "fleet report varies with worker count");
    assert_eq!(m1, m8, "fleet metrics vary with worker count");

    // And the full bench document (grid sweep + gauges) over a tiny
    // population — the same artifact CI diffs across --threads.
    let json_at = |threads: usize| {
        let metrics = MetricsRecorder::new();
        let cells =
            wearlock_bench::fleet::sweep(&SweepRunner::new(threads), SEED, 10, 0.02, &metrics);
        (wearlock_bench::fleet::to_json(&cells), metrics.to_json())
    };
    let (j1, g1) = json_at(1);
    let (j8, g8) = json_at(8);
    assert_eq!(j1, j8, "BENCH_pr5 document varies with worker count");
    assert_eq!(g1, g8, "fleet gauges vary with worker count");
    assert!(j1.contains("\"evictions_within_budget\": true"));
}
