//! Integration tests for the extension features: token channel coding
//! schemes, acoustic fingerprinting and distance bounding.

use wearlock::config::WearLockConfig;
use wearlock::environment::Environment;
use wearlock::ranging::{check_bound, measure_distance, BoundOutcome, RangingConfig};
use wearlock::session::UnlockSession;
use wearlock_acoustics::noise::Location;
use wearlock_dsp::units::Meters;
use wearlock_modem::coding::TokenCoding;
use wearlock_tests::rng;

#[test]
fn session_unlocks_with_convolutional_coding() {
    let config = WearLockConfig::builder()
        .token_coding(TokenCoding::Convolutional)
        .build()
        .unwrap();
    let mut session = UnlockSession::new(config).unwrap();
    let mut r = rng(300);
    let mut ok = 0;
    for _ in 0..6 {
        if session
            .attempt(&Environment::default(), &mut r)
            .outcome
            .unlocked()
        {
            ok += 1;
        }
        session.enter_pin();
    }
    assert!(ok >= 4, "conv-coded unlocks {ok}/6");
}

#[test]
fn convolutional_coding_is_shorter_on_air() {
    // 32-bit token: conv = 76 coded bits vs repetition-5 = 160 — the
    // conv frame saves about one OFDM block of air time at equal or
    // better robustness to scattered errors.
    assert!(TokenCoding::Convolutional.coded_len(32) < TokenCoding::Repetition(5).coded_len(32));
}

#[test]
fn repetition_and_conv_both_beat_uncoded_on_noisy_channel() {
    use rand::Rng;
    use wearlock_acoustics::channel::AwgnChannel;
    use wearlock_dsp::units::Db;
    use wearlock_modem::coding::{conv_encode, viterbi_decode};
    use wearlock_modem::config::OfdmConfig;
    use wearlock_modem::constellation::Modulation;
    use wearlock_modem::{OfdmDemodulator, OfdmModulator};

    let cfg = OfdmConfig::default();
    let tx = OfdmModulator::new(cfg.clone()).unwrap();
    let rx = OfdmDemodulator::new(cfg).unwrap();
    let mut r = rng(301);
    let ch = AwgnChannel::new(Db(-3.0));

    let mut uncoded_ok = 0;
    let mut conv_ok = 0;
    let trials = 14;
    for _ in 0..trials {
        let bits: Vec<bool> = (0..32).map(|_| r.gen()).collect();

        // Uncoded 32-bit token.
        let wave = tx.modulate(&bits, Modulation::Qpsk).unwrap();
        let rec = ch.transmit(&wave, &mut r);
        if let Ok(out) = rx.demodulate(&rec, Modulation::Qpsk, 32) {
            if out.bits == bits {
                uncoded_ok += 1;
            }
        }

        // Convolutionally coded token.
        let coded = conv_encode(&bits);
        let wave = tx.modulate(&coded, Modulation::Qpsk).unwrap();
        let rec = ch.transmit(&wave, &mut r);
        if let Ok(out) = rx.demodulate(&rec, Modulation::Qpsk, coded.len()) {
            if viterbi_decode(&out.bits, 32)
                .map(|d| d == bits)
                .unwrap_or(false)
            {
                conv_ok += 1;
            }
        }
    }
    assert!(
        conv_ok > uncoded_ok,
        "conv {conv_ok}/{trials} vs uncoded {uncoded_ok}/{trials}"
    );
    assert!(conv_ok >= 6, "conv only {conv_ok}/{trials}");
}

#[test]
fn distance_bounding_separates_honest_from_relay() {
    let cfg = RangingConfig::default();
    let env = Environment::builder()
        .location(Location::Office)
        .distance(Meters(0.4))
        .build();
    let mut r = rng(302);

    let honest = check_bound(&cfg, &env, Meters(1.2), 0.0, &mut r).unwrap();
    assert!(honest.accepted(), "{honest:?}");

    let relayed = check_bound(&cfg, &env, Meters(1.2), 0.015, &mut r).unwrap();
    assert!(!relayed.accepted(), "{relayed:?}");
}

#[test]
fn ranging_accuracy_supports_the_one_meter_boundary() {
    let cfg = RangingConfig::default();
    let mut r = rng(303);
    // Measurements at 0.5 m and 1.5 m must be distinguishable.
    let near = measure_distance(
        &cfg,
        &Environment::builder().distance(Meters(0.5)).build(),
        0.0,
        &mut r,
    )
    .unwrap();
    let far = measure_distance(
        &cfg,
        &Environment::builder().distance(Meters(1.5)).build(),
        0.0,
        &mut r,
    )
    .unwrap();
    match (near, far) {
        (BoundOutcome::WithinBound(n), BoundOutcome::WithinBound(f)) => {
            assert!(
                f.distance.value() > n.distance.value() + 0.5,
                "near {} far {}",
                n.distance,
                f.distance
            );
        }
        other => panic!("measurements missing: {other:?}"),
    }
}

#[test]
fn fingerprint_rejects_foreign_speaker_through_session_probes() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wearlock::fingerprint::FingerprintVerifier;
    use wearlock_acoustics::channel::AcousticLink;
    use wearlock_acoustics::hardware::SpeakerModel;
    use wearlock_dsp::units::Spl;
    use wearlock_modem::{OfdmDemodulator, OfdmModulator};

    let cfg = WearLockConfig::default();
    let modem_cfg = cfg.modem().clone();
    let tx = OfdmModulator::new(modem_cfg.clone()).unwrap();
    let rx = OfdmDemodulator::new(modem_cfg.clone()).unwrap();
    let mut r = StdRng::seed_from_u64(304);

    let probe = |speaker: SpeakerModel, r: &mut StdRng| {
        let link = AcousticLink::builder()
            .distance(Meters(0.3))
            .noise(Location::QuietRoom.noise_model())
            .speaker(speaker)
            .build()
            .unwrap();
        let rec = link.transmit(&tx.probe(2).unwrap(), Spl(65.0), r);
        rx.analyze_probe(&rec).unwrap()
    };

    let enrolled = FingerprintVerifier::enroll(
        &[
            probe(SpeakerModel::smartphone(), &mut r),
            probe(SpeakerModel::smartphone(), &mut r),
        ],
        &modem_cfg,
        0.3,
    )
    .unwrap();
    // Genuine device accepted, foreign unit rejected.
    assert!(enrolled.matches(&probe(SpeakerModel::smartphone(), &mut r), &modem_cfg));
    assert!(!enrolled.matches(
        &probe(SpeakerModel::smartphone().with_ripple_phase(2.4), &mut r),
        &modem_cfg
    ));
}
