//! The reproducibility contract, locked down: every sweep and report
//! must be bitwise identical whether it runs serially or fanned out
//! over any number of workers, and identical across repeated runs with
//! the same seed.

use wearlock::environment::Environment;
use wearlock_runtime::{task_rng, SweepRunner};
use wearlock_tests::unlock_rate_on;

const SEED: u64 = 20170605;

#[test]
fn runner_serial_matches_parallel_bitwise() {
    use rand::Rng;
    let work = |i: usize, rng: &mut rand::rngs::StdRng| -> (usize, f64, u64) {
        let mut acc = 0.0;
        for _ in 0..1 + i % 13 {
            acc += rng.gen::<f64>();
        }
        (i, acc, rng.gen::<u64>())
    };
    let reference = SweepRunner::serial().run(200, SEED, work);
    let parallel = SweepRunner::new(4).run(200, SEED, work);
    assert_eq!(reference, parallel);
}

#[test]
fn runner_identical_across_1_2_8_threads() {
    use rand::Rng;
    let work = |i: usize, rng: &mut rand::rngs::StdRng| -> f64 {
        (0..50 + i % 17).map(|_| rng.gen::<f64>()).sum()
    };
    let one = SweepRunner::new(1).run(128, SEED, work);
    let two = SweepRunner::new(2).run(128, SEED, work);
    let eight = SweepRunner::new(8).run(128, SEED, work);
    assert_eq!(one, two);
    assert_eq!(two, eight);
}

#[test]
fn task_rng_is_pure() {
    use rand::Rng;
    let a: Vec<u64> = (0..8).map(|i| task_rng(SEED, i).gen()).collect();
    let b: Vec<u64> = (0..8).map(|i| task_rng(SEED, i).gen()).collect();
    assert_eq!(a, b);
}

#[test]
fn unlock_rate_independent_of_worker_count() {
    let env = Environment::default();
    let serial = unlock_rate_on(&env, 8, SEED, &SweepRunner::serial());
    let parallel = unlock_rate_on(&env, 8, SEED, &SweepRunner::new(8));
    assert_eq!(serial.to_bits(), parallel.to_bits());
}

#[test]
fn sweep_points_identical_across_thread_counts() {
    // The real fig4 sweep (cheapest full experiment): every float of
    // every point must agree bitwise across worker counts.
    let volumes = [50.0, 64.0];
    let distances = [0.25, 1.0, 4.0];
    let reference = wearlock_bench::fig4::sweep(&volumes, &distances, SEED, &SweepRunner::serial());
    for threads in [2, 8] {
        let got =
            wearlock_bench::fig4::sweep(&volumes, &distances, SEED, &SweepRunner::new(threads));
        assert_eq!(reference, got, "threads={threads}");
    }
}

#[test]
fn metrics_json_identical_across_thread_counts() {
    // The telemetry extension of the determinism contract: per-task
    // recorders merged in task-index order make the metrics JSON —
    // float histogram sums included — bitwise identical for every
    // worker count.
    let metrics_for = |runner: &SweepRunner| -> String {
        let metrics = wearlock_telemetry::MetricsRecorder::new();
        wearlock_bench::report::funnel(runner, SEED, 2, &metrics);
        wearlock_bench::report::fig6_observed(runner, SEED, 10, &metrics);
        metrics.to_json()
    };
    let reference = metrics_for(&SweepRunner::serial());
    assert!(reference.contains("\"attempts\":"), "{reference}");
    assert!(reference.contains("unlocked_acoustic"), "{reference}");
    for threads in [2, 8] {
        assert_eq!(
            reference,
            metrics_for(&SweepRunner::new(threads)),
            "threads={threads}"
        );
    }
}

#[test]
fn repro_rows_identical_across_threads_and_runs() {
    // Formatted report rows — what `repro` actually prints — must be
    // identical across worker counts AND across two same-seed runs
    // (catches any wall-clock or scheduling leakage into the output).
    let rows = |runner: &SweepRunner| -> Vec<String> {
        let mut out = wearlock_bench::report::fig4(runner, SEED);
        out.extend(wearlock_bench::report::fig11(runner, SEED, 20));
        out.extend(wearlock_bench::report::table2(runner, SEED, 10));
        out.extend(wearlock_bench::report::fig6(runner, SEED, 10));
        // table1 aggregates per-cell mode votes; a HashMap there once
        // made the reported mode flip between identical runs on count
        // ties, so its rows stay in this comparison.
        out.extend(wearlock_bench::report::table1(SEED, 2));
        out
    };
    let serial_a = rows(&SweepRunner::serial());
    let serial_b = rows(&SweepRunner::serial());
    assert_eq!(serial_a, serial_b, "two serial same-seed runs differ");
    for threads in [2, 8] {
        let parallel = rows(&SweepRunner::new(threads));
        assert_eq!(serial_a, parallel, "threads={threads}");
    }
}
