//! End-to-end protocol behaviour across the whole stack: core session +
//! modem + acoustics + auth + sensors + platform.

use wearlock::environment::{Environment, MotionScenario};
use wearlock::session::{DenyReason, Outcome, UnlockPath};
use wearlock_acoustics::channel::PathKind;
use wearlock_acoustics::noise::Location;
use wearlock_dsp::units::Meters;
use wearlock_sensors::Activity;
use wearlock_tests::{default_session, rng, unlock_rate};

#[test]
fn benign_unlock_succeeds_reliably() {
    let rate = unlock_rate(&Environment::default(), 10, 1);
    assert!(rate >= 0.8, "benign unlock rate {rate}");
}

#[test]
fn unlock_rate_collapses_with_distance() {
    let near = unlock_rate(&Environment::builder().distance(Meters(0.3)).build(), 8, 2);
    let far = unlock_rate(&Environment::builder().distance(Meters(3.5)).build(), 8, 3);
    assert!(near > 0.7, "near {near}");
    assert!(far < 0.3, "far {far}");
}

#[test]
fn every_location_supports_close_range_unlocks() {
    for (i, loc) in Location::FIELD_TEST.iter().enumerate() {
        let env = Environment::builder()
            .location(*loc)
            .distance(Meters(0.25))
            .build();
        let rate = unlock_rate(&env, 6, 10 + i as u64);
        // The loudest environment pins the speaker at its volume
        // ceiling; per-attempt success drops there (users retry, per
        // the case study).
        let floor = if *loc == Location::GroceryStore {
            0.33
        } else {
            0.5
        };
        assert!(rate >= floor, "{loc}: rate {rate}");
    }
}

#[test]
fn the_four_deny_paths_trigger() {
    let mut session = default_session();
    let mut r = rng(42);

    // 1. No wireless.
    let rep = session.attempt(
        &Environment::builder().wireless_in_range(false).build(),
        &mut r,
    );
    assert_eq!(rep.outcome, Outcome::Denied(DenyReason::NoWirelessLink));

    // 2. Motion mismatch.
    let rep = session.attempt(
        &Environment::builder()
            .motion(MotionScenario::Different {
                phone: Activity::Running,
                watch: Activity::Walking,
            })
            .build(),
        &mut r,
    );
    assert_eq!(rep.outcome, Outcome::Denied(DenyReason::MotionMismatch));

    // 3. Out of acoustic range: probe not detected or SNR too low.
    let rep = session.attempt(
        &Environment::builder()
            .distance(Meters(6.0))
            .location(Location::GroceryStore)
            .build(),
        &mut r,
    );
    assert!(
        matches!(
            rep.outcome,
            Outcome::Denied(
                DenyReason::ProbeNotDetected
                    | DenyReason::SnrTooLow
                    | DenyReason::TokenRejected
                    | DenyReason::AmbientMismatch
                    // A barely-detectable far signal has a smeared
                    // correlation profile, which can read as NLOS.
                    | DenyReason::NlosDetected
            )
        ),
        "far outcome {:?}",
        rep.outcome
    );

    // 4. Severe body blocking: NLOS or PHY failure.
    session.enter_pin();
    let rep = session.attempt(
        &Environment::builder()
            .path(PathKind::BodyBlocked { block_db: 32.0 })
            .build(),
        &mut r,
    );
    assert!(
        !rep.outcome.unlocked(),
        "blocked path unlocked: {:?}",
        rep.outcome
    );
}

#[test]
fn walking_together_uses_motion_skip_and_saves_audio() {
    let mut session = default_session();
    let mut r = rng(7);
    let env = Environment::builder()
        .motion(MotionScenario::CoLocated {
            activity: Activity::Walking,
        })
        .build();
    let mut skip_delays = Vec::new();
    let mut acoustic_delays = Vec::new();
    for _ in 0..10 {
        let rep = session.attempt(&env, &mut r);
        match rep.outcome {
            Outcome::Unlocked(UnlockPath::MotionSkip) => skip_delays.push(rep.total_delay.value()),
            Outcome::Unlocked(UnlockPath::Acoustic(_)) => {
                acoustic_delays.push(rep.total_delay.value())
            }
            _ => {}
        }
        session.enter_pin();
    }
    assert!(
        skip_delays.len() >= 5,
        "expected mostly skips, got {}",
        skip_delays.len()
    );
    if let (Some(&skip), Some(&full)) = (skip_delays.first(), acoustic_delays.first()) {
        assert!(skip < full, "skip {skip} should be faster than full {full}");
    }
}

#[test]
fn counter_advances_and_tokens_never_repeat() {
    let mut session = default_session();
    let mut r = rng(8);
    let env = Environment::default();
    let c0 = session.last_counter();
    for _ in 0..3 {
        let _ = session.attempt(&env, &mut r);
    }
    // At least the acoustic attempts burned counters.
    assert!(session.last_counter() > c0);
}

#[test]
fn keyguard_tracks_outcomes() {
    let mut session = default_session();
    let mut r = rng(9);
    let rep = session.attempt(&Environment::default(), &mut r);
    if rep.outcome.unlocked() {
        assert_eq!(
            session.keyguard().state(),
            wearlock_platform::keyguard::LockState::Unlocked
        );
        assert_eq!(session.keyguard().unlock_count(), 1);
    }
}

#[test]
fn near_ultrasound_band_works_phone_to_phone() {
    use wearlock::config::WearLockConfig;
    use wearlock::session::UnlockSession;
    use wearlock_modem::config::FrequencyBand;

    let config = WearLockConfig::builder()
        .band(FrequencyBand::NearUltrasound)
        .build()
        .unwrap();
    let mut session = UnlockSession::new(config).unwrap();
    let mut r = rng(10);
    let env = Environment::builder()
        .location(Location::QuietRoom)
        .distance(Meters(0.25))
        .build();
    let mut unlocked = 0;
    for _ in 0..5 {
        if session.attempt(&env, &mut r).outcome.unlocked() {
            unlocked += 1;
        }
        session.enter_pin();
    }
    assert!(unlocked >= 3, "near-ultrasound unlocks {unlocked}/5");
}
