//! Resilience contracts, end to end:
//!
//! * **Null-fault byte-identity** — a zero-intensity fault plan leaves
//!   the pipeline byte-identical to the plain attempt path (so every
//!   pre-existing experiment is provably unaffected by the fault
//!   layer's existence).
//! * **Thread-count determinism** — the `resilience` sweep (points and
//!   metrics JSON) is bitwise identical for 1, 2 and 8 workers, the
//!   same contract CI enforces on the `repro` binary.
//! * **Retry-ladder behaviour** — hard denials stop immediately,
//!   exhaustion surrenders to PIN, and escalated retries beat flat
//!   ones on a degraded channel.

use proptest::prelude::*;

use wearlock::environment::Environment;
use wearlock::session::{AttemptSummary, DenyReason, ResilientOutcome, RetryPolicy};
use wearlock_acoustics::noise::Location;
use wearlock_dsp::units::Meters;
use wearlock_faults::{FaultConfig, FaultInjector, FaultIntensity, FaultPlan};
use wearlock_runtime::SweepRunner;
use wearlock_telemetry::{MetricsRecorder, NullSink};
use wearlock_tests::{default_session, rng};

const SEED: u64 = 20170605;

#[test]
fn null_plan_is_byte_identical_to_plain_attempt() {
    // The acceptance contract: with all fault intensities at zero the
    // faulted entry point makes the same draws and produces the same
    // report as the no-faults path, across environment shapes.
    let envs = [
        Environment::default(),
        Environment::builder()
            .location(Location::Cafe)
            .distance(Meters(0.5))
            .build(),
        Environment::builder().distance(Meters(3.5)).build(),
        Environment::builder().wireless_in_range(false).build(),
    ];
    for (k, env) in envs.iter().enumerate() {
        let seed = SEED + k as u64;
        let mut plain = default_session();
        let mut faulted = default_session();
        let mut derived = default_session();
        let a = plain.attempt(env, &mut rng(seed));
        let b = faulted.attempt_faulted(env, &FaultPlan::none(), &NullSink, &mut rng(seed));
        // A plan *derived* from a zero-intensity config must behave
        // like the literal null plan, not just compare equal to it.
        let zero = FaultInjector::new(FaultConfig::new(seed, FaultIntensity::zero())).plan(0);
        assert!(zero.is_null());
        let c = derived.attempt_faulted(env, &zero, &NullSink, &mut rng(seed));
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "env {k}");
        assert_eq!(format!("{a:?}"), format!("{c:?}"), "env {k}");
    }
}

#[test]
fn resilience_sweep_is_identical_across_thread_counts() {
    let run_at = |threads: usize| {
        let runner = SweepRunner::new(threads);
        let metrics = MetricsRecorder::new();
        let pts = wearlock_bench::resilience::run(4, SEED, &runner, &metrics);
        (pts, metrics.to_json())
    };
    let (p1, j1) = run_at(1);
    let (p2, j2) = run_at(2);
    let (p8, j8) = run_at(8);
    assert_eq!(p1, p2);
    assert_eq!(p1, p8);
    assert_eq!(j1, j2, "metrics JSON differs between 1 and 2 workers");
    assert_eq!(j1, j8, "metrics JSON differs between 1 and 8 workers");
}

#[test]
fn hard_denial_stops_the_ladder_without_pin() {
    let env = Environment::builder().wireless_in_range(false).build();
    let mut s = default_session();
    let rep = s.attempt_resilient(
        &env,
        &FaultInjector::new(FaultConfig::new(3, FaultIntensity::uniform(1.0))),
        &RetryPolicy::default(),
        &NullSink,
        &mut rng(41),
    );
    assert_eq!(rep.tries(), 1);
    assert_eq!(
        rep.outcome,
        ResilientOutcome::Denied(DenyReason::NoWirelessLink)
    );
    assert!(rep.pin_delay.is_none());
}

#[test]
fn hostile_channel_ends_in_pin_fallback_not_lockout() {
    // On a channel too bad for acoustics, the ladder must fail
    // gracefully: PIN fallback (which clears the lockout), never a
    // locked-out dead end.
    let env = Environment::builder()
        .distance(Meters(4.0))
        .location(Location::Cafe)
        .build();
    let mut surrendered = 0;
    for seed in 0..6u64 {
        let mut s = default_session();
        let injector = FaultInjector::new(FaultConfig::new(seed, FaultIntensity::uniform(1.0)));
        let rep = s.attempt_resilient(
            &env,
            &injector,
            &RetryPolicy::default(),
            &NullSink,
            &mut rng(300 + seed),
        );
        if rep.outcome == ResilientOutcome::PinFallback {
            surrendered += 1;
            assert!(rep.pin_delay.expect("pin time recorded").value() > 0.0);
        }
        assert!(!s.lockout().is_locked_out(), "seed {seed} left a lockout");
    }
    assert!(surrendered >= 4, "only {surrendered}/6 surrendered");
}

#[test]
fn escalated_retries_beat_flat_retries_on_a_degraded_channel() {
    // The satellite fix in one number: retries that re-probe with a
    // louder volume and relaxed BER must unlock at least as often as
    // retries that blindly repeat the failed configuration.
    // Office at 1.5 m: the noise-derived volume alone is not enough,
    // but the speaker still has headroom — exactly the regime where
    // reacting to the failure (louder re-probe, relaxed BER) matters.
    let env = Environment::builder().distance(Meters(1.5)).build();
    let flat = RetryPolicy {
        volume_boost_db: 0.0,
        relax_max_ber: None,
        surrender_to_pin: false,
        ..RetryPolicy::default()
    };
    let escalating = RetryPolicy {
        surrender_to_pin: false,
        ..RetryPolicy::default()
    };
    let rate = |policy: &RetryPolicy| {
        let mut unlocks = 0;
        for seed in 0..20u64 {
            let mut s = default_session();
            let rep = s.attempt_resilient(
                &env,
                &FaultInjector::disabled(),
                policy,
                &NullSink,
                &mut rng(500 + seed),
            );
            unlocks += usize::from(rep.unlocked());
        }
        unlocks
    };
    let flat_unlocks = rate(&flat);
    let escalated_unlocks = rate(&escalating);
    assert!(
        escalated_unlocks >= flat_unlocks,
        "escalation made things worse: {escalated_unlocks} < {flat_unlocks}"
    );
    assert!(
        escalated_unlocks >= 12,
        "escalating ladder unlocked only {escalated_unlocks}/20"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fault_plans_are_pure_functions_of_seed_and_index(
        seed in any::<u64>(),
        index in 0u64..64,
        level in 0.0f64..=1.0,
    ) {
        let config = FaultConfig::new(seed, FaultIntensity::uniform(level));
        let a = FaultPlan::derive(&config, index);
        let b = FaultPlan::derive(&config, index);
        prop_assert_eq!(a, b);
        let inj = FaultInjector::new(config);
        prop_assert_eq!(inj.plan(index), a);
    }

    #[test]
    fn zero_intensity_plans_are_null_for_any_seed(
        seed in any::<u64>(),
        index in 0u64..64,
    ) {
        let plan = FaultPlan::derive(&FaultConfig::new(seed, FaultIntensity::zero()), index);
        prop_assert!(plan.is_null());
    }

    #[test]
    fn null_acoustic_faults_never_touch_samples(
        samples in prop::collection::vec(-1.0f64..1.0, 0..256),
    ) {
        let mut mutated = samples.clone();
        wearlock_faults::AcousticFaults::none().apply(&mut mutated);
        prop_assert_eq!(mutated, samples);
    }
}
