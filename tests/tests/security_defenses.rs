//! Security-property integration tests: the §IV threat model exercised
//! against the full stack.

use wearlock::attacks::{
    brute_force, intercept_at_distance, record_and_replay, relay_attack, RelayAttack, RelayOutcome,
    ReplayOutcome,
};
use wearlock::config::WearLockConfig;
use wearlock_acoustics::noise::Location;
use wearlock_dsp::units::Meters;
use wearlock_modem::TransmissionMode;
use wearlock_tests::rng;

#[test]
fn brute_force_never_succeeds_within_lockout() {
    let mut r = rng(100);
    let report = brute_force(&WearLockConfig::default(), 500, &mut r);
    assert_eq!(report.simulated_successes, 0);
    assert!(report.success_probability < 1e-7);
}

#[test]
fn token_recovery_collapses_outside_secure_range() {
    let mut r = rng(101);
    let config = WearLockConfig::default();
    let mut rates = Vec::new();
    for d in [0.3, 2.0, 3.5] {
        let rep = intercept_at_distance(
            &config,
            Location::Office,
            Meters(d),
            TransmissionMode::Psk8,
            8,
            &mut r,
        )
        .unwrap();
        rates.push(rep.token_recovery_rate);
    }
    assert!(rates[0] > 0.5, "legit recovery {}", rates[0]);
    assert!(
        rates[2] < 0.2,
        "attacker at 3.5 m recovers {} of tokens",
        rates[2]
    );
    assert!(rates[0] > rates[2]);
}

#[test]
fn eavesdropper_ber_grows_with_distance() {
    let mut r = rng(102);
    let config = WearLockConfig::default();
    let near = intercept_at_distance(
        &config,
        Location::Office,
        Meters(0.3),
        TransmissionMode::Psk8,
        6,
        &mut r,
    )
    .unwrap();
    let far = intercept_at_distance(
        &config,
        Location::Office,
        Meters(3.0),
        TransmissionMode::Psk8,
        6,
        &mut r,
    )
    .unwrap();
    assert!(
        far.mean_ber > near.mean_ber + 0.03,
        "near {} far {}",
        near.mean_ber,
        far.mean_ber
    );
}

#[test]
fn replay_and_relay_defences_hold() {
    let config = WearLockConfig::default();
    assert_eq!(
        record_and_replay(&config, 0.02),
        ReplayOutcome::DetectedReplay
    );
    assert_eq!(record_and_replay(&config, 2.0), ReplayOutcome::TimedOut);

    // The acknowledged limitation: an ideal relay inside the timing
    // window succeeds without fingerprinting...
    assert_eq!(
        relay_attack(
            &config,
            RelayAttack {
                extra_delay_s: 0.05,
                relay_evm: 0.0
            },
            None
        ),
        RelayOutcome::Accepted
    );
    // ...and the paper's proposed counter-measures stop realistic ones.
    assert_eq!(
        relay_attack(
            &config,
            RelayAttack {
                extra_delay_s: 0.05,
                relay_evm: 0.1
            },
            Some(0.05)
        ),
        RelayOutcome::FingerprintMismatch
    );
}

#[test]
fn hotp_tokens_are_one_time_across_the_stack() {
    use wearlock_auth::token::{TokenGenerator, TokenVerifier, VerifyOutcome};
    let mut g = TokenGenerator::new(&b"k"[..], 0);
    let mut v = TokenVerifier::new(&b"k"[..], 0, 3);
    let t = g.next_token();
    assert!(matches!(v.verify(t), VerifyOutcome::Accepted { .. }));
    for _ in 0..3 {
        assert_eq!(v.verify(t), VerifyOutcome::Replayed);
    }
}
