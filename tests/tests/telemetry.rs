//! Telemetry contract: observing an attempt never changes it, the
//! funnel counters agree with the `AttemptReport` outcomes they
//! summarize, and the recorded spans reconcile with the report's own
//! delay/energy accounting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wearlock::config::WearLockConfig;
use wearlock::environment::Environment;
use wearlock::session::{outcome_event, UnlockSession};
use wearlock_runtime::SweepRunner;
use wearlock_telemetry::{AttemptOutcome, EventSink, MetricsRecorder, NullSink};

const SEED: u64 = 20170605;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn session() -> UnlockSession {
    UnlockSession::new(WearLockConfig::default()).expect("default config is valid")
}

#[test]
fn observing_an_attempt_does_not_change_it() {
    // Same seed through the observed and unobserved entry points: the
    // sink must be write-only — identical reports, bit for bit.
    let env = Environment::default();
    let metrics = MetricsRecorder::new();
    let plain = session().attempt(&env, &mut rng(7));
    let observed = session().attempt_observed(&env, &metrics, &mut rng(7));
    assert_eq!(format!("{plain:?}"), format!("{observed:?}"));

    // NullSink goes through the same wrapper and must also match.
    let null = session().attempt_observed(&env, &NullSink, &mut rng(7));
    assert_eq!(format!("{plain:?}"), format!("{null:?}"));
}

#[test]
fn spans_reconcile_with_the_attempt_report() {
    let env = Environment::default();
    let metrics = MetricsRecorder::new();
    let report = session().attempt_observed(&env, &metrics, &mut rng(7));
    assert!(report.outcome.unlocked(), "{report:?}");

    let snap = metrics.snapshot();
    assert_eq!(metrics.attempts(), 1);
    assert_eq!(metrics.outcome_count(outcome_event(report.outcome)), 1);
    // One span per labelled delay, and each stage's recorded latency is
    // exactly the report's entry for it.
    let span_count: u64 = snap.stages.values().map(|s| s.latency_s.count).sum();
    assert_eq!(span_count, report.delays.len() as u64);
    for (stage, delay) in &report.delays {
        let s = snap.stages.get(stage).unwrap_or_else(|| {
            panic!(
                "stage {stage} missing from metrics: {:?}",
                snap.stages.keys()
            )
        });
        assert_eq!(
            s.latency_s.sum.to_bits(),
            delay.value().to_bits(),
            "{stage}"
        );
    }
    // Totals reconcile (re-summed in stage-name order, so compare to
    // within float reassociation error, not bitwise).
    assert!((snap.total_latency_s() - report.total_delay.value()).abs() < 1e-9);
    assert!((snap.total_watch_energy_j() - report.watch_energy_j).abs() < 1e-9);
    assert!((snap.total_phone_energy_j() - report.phone_energy_j).abs() < 1e-9);
}

#[test]
fn funnel_counts_match_attempt_outcomes() {
    // The funnel sweep returns each attempt's outcome (derived from the
    // AttemptReport) while the recorder counts AttemptEvents emitted
    // inside the session — two independent paths that must tally.
    let metrics = MetricsRecorder::new();
    let outcomes = wearlock_bench::funnel::run(3, SEED, &SweepRunner::serial(), &metrics);
    assert_eq!(metrics.attempts(), outcomes.len() as u64);
    for o in AttemptOutcome::ALL {
        let n = outcomes.iter().filter(|&&x| x == o).count() as u64;
        assert_eq!(metrics.outcome_count(o), n, "{}", o.name());
    }
    // The scenario mix must actually exercise the funnel: unlocks AND
    // several distinct denial reasons.
    let distinct_denials = AttemptOutcome::ALL
        .iter()
        .filter(|o| !o.unlocked() && metrics.outcome_count(**o) > 0)
        .count();
    assert!(metrics.outcome_count(AttemptOutcome::UnlockedAcoustic) > 0);
    assert!(
        distinct_denials >= 3,
        "only {distinct_denials} denial kinds"
    );
}

#[test]
fn early_denial_emits_no_acoustic_stages() {
    // A wireless-gate denial never reaches the acoustic pipeline: the
    // recorder must hold only the handshake span and the funnel entry.
    let env = Environment::builder().wireless_in_range(false).build();
    let metrics = MetricsRecorder::new();
    let report = session().attempt_observed(&env, &metrics, &mut rng(1));
    assert!(!report.outcome.unlocked());
    assert!(report.data_channels.is_empty());
    let snap = metrics.snapshot();
    assert_eq!(
        metrics.outcome_count(AttemptOutcome::DeniedNoWirelessLink),
        1
    );
    assert!(
        snap.stages.keys().all(|s| !s.starts_with("audio:")),
        "{:?}",
        snap.stages.keys()
    );
}

#[test]
fn a_disabled_sink_records_nothing() {
    assert!(!NullSink.enabled());
    let env = Environment::default();
    session().attempt_observed(&env, &NullSink, &mut rng(7));
    // And a recorder used as a sink is enabled and fills up.
    let metrics = MetricsRecorder::new();
    assert!(metrics.enabled());
    session().attempt_observed(&env, &metrics, &mut rng(7));
    assert_eq!(metrics.attempts(), 1);
    assert!(!metrics.snapshot().stages.is_empty());
}
