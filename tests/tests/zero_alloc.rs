//! Counting-allocator harness: proves the modem's scratch-based hot
//! path performs **zero heap allocations per frame** once warmed up.
//!
//! The library crates forbid unsafe code, so the counting
//! `#[global_allocator]` lives here, in an integration-test binary
//! root. The tests run single-threaded within this binary's process
//! (`--test-threads=1` is not required: each assertion snapshots the
//! counter around its own workload, and the workloads themselves are
//! allocation-free, but parallel test threads could still interleave —
//! so every steady-state assertion funnels through one global lock).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use wearlock_modem::config::OfdmConfig;
use wearlock_modem::constellation::Modulation;
use wearlock_modem::{DemodFrame, DemodScratch, OfdmDemodulator, OfdmModulator, TxScratch};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: pure delegation to the system allocator plus a relaxed
// atomic increment that never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Serializes the measured sections so a concurrently running test
/// can't charge its allocations to another test's window.
static MEASURE: Mutex<()> = Mutex::new(());

fn alloc_delta(f: impl FnOnce()) -> u64 {
    let _guard = MEASURE.lock().expect("measure lock");
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn setup() -> (OfdmModulator, OfdmDemodulator, Vec<bool>) {
    let cfg = OfdmConfig::default();
    let tx = OfdmModulator::new(cfg.clone()).unwrap();
    let rx = OfdmDemodulator::new(cfg).unwrap();
    let bits: Vec<bool> = (0..240).map(|i| (i * 13 + 1) % 7 < 3).collect();
    (tx, rx, bits)
}

#[test]
fn demodulate_frame_is_allocation_free_after_warmup() {
    let (tx, rx, bits) = setup();
    let wave = tx.modulate(&bits, Modulation::Qpsk).unwrap();
    let mut scratch = DemodScratch::new();
    let mut frame = DemodFrame::new();

    // Warmup: grows scratch buffers, fills the plan cache and the
    // constellation tables.
    let sync = rx.detect_with(&wave, &mut scratch).unwrap();
    rx.demodulate_frame_into(
        &wave,
        Modulation::Qpsk,
        bits.len(),
        sync,
        &mut scratch,
        &mut frame,
    )
    .unwrap();

    let delta = alloc_delta(|| {
        for _ in 0..50 {
            rx.demodulate_frame_into(
                &wave,
                Modulation::Qpsk,
                bits.len(),
                sync,
                &mut scratch,
                &mut frame,
            )
            .unwrap();
        }
    });
    assert_eq!(delta, 0, "steady-state demodulation must not allocate");
    assert_eq!(frame.bits, bits, "and must still decode correctly");
}

#[test]
fn detect_is_allocation_free_after_warmup() {
    let (tx, rx, bits) = setup();
    let wave = tx.modulate(&bits, Modulation::Qpsk).unwrap();
    let mut scratch = DemodScratch::new();
    let warm = rx.detect_with(&wave, &mut scratch).unwrap();

    let delta = alloc_delta(|| {
        for _ in 0..20 {
            let sync = rx.detect_with(&wave, &mut scratch).unwrap();
            assert_eq!(sync.preamble_offset, warm.preamble_offset);
        }
    });
    assert_eq!(delta, 0, "steady-state detection must not allocate");
}

#[test]
fn modulate_into_is_allocation_free_after_warmup() {
    let (tx, _, bits) = setup();
    let mut scratch = TxScratch::new();
    let mut wave = Vec::new();
    tx.modulate_into(&bits, Modulation::Qam16, &mut scratch, &mut wave)
        .unwrap();
    let reference = wave.clone();

    let delta = alloc_delta(|| {
        for _ in 0..20 {
            tx.modulate_into(&bits, Modulation::Qam16, &mut scratch, &mut wave)
                .unwrap();
        }
    });
    assert_eq!(delta, 0, "steady-state modulation must not allocate");
    assert_eq!(wave, reference, "and must still produce the same frame");
}

#[test]
fn full_synced_pipeline_is_allocation_free_per_round() {
    // TX + RX round trip with every buffer reused: the paper's unlock
    // loop in miniature. Warm one round, then measure several.
    let (tx, rx, bits) = setup();
    let mut tx_scratch = TxScratch::new();
    let mut scratch = DemodScratch::new();
    let mut frame = DemodFrame::new();
    let mut wave = Vec::new();

    tx.modulate_into(&bits, Modulation::Qpsk, &mut tx_scratch, &mut wave)
        .unwrap();
    let sync = rx.detect_with(&wave, &mut scratch).unwrap();
    rx.demodulate_frame_into(
        &wave,
        Modulation::Qpsk,
        bits.len(),
        sync,
        &mut scratch,
        &mut frame,
    )
    .unwrap();

    let delta = alloc_delta(|| {
        for _ in 0..10 {
            tx.modulate_into(&bits, Modulation::Qpsk, &mut tx_scratch, &mut wave)
                .unwrap();
            let sync = rx.detect_with(&wave, &mut scratch).unwrap();
            rx.demodulate_frame_into(
                &wave,
                Modulation::Qpsk,
                bits.len(),
                sync,
                &mut scratch,
                &mut frame,
            )
            .unwrap();
        }
    });
    assert_eq!(delta, 0, "synced TX→RX rounds must not allocate");
    assert_eq!(frame.bits, bits);
}
