//! Offline stand-in for the `criterion` benchmark harness, implementing
//! the subset WearLock's benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Sampling model: each benchmark warms up once, then runs
//! doubling batches until the measurement budget is spent, reporting
//! mean ns/iter to stdout. The budget is 200 ms per benchmark when the
//! binary is invoked with `--bench` (i.e. under `cargo bench`) and a
//! single measured iteration otherwise, so accidentally executing bench
//! binaries in a test run stays cheap. `WEARLOCK_BENCH_MS` overrides
//! the budget in milliseconds.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How [`Bencher::iter_batched`] amortizes setup; the stub runs one
/// setup per measured call regardless, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collects timing for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Benchmarks `f` called back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.total += start.elapsed();
            self.iters += batch;
            if self.total >= self.budget {
                break;
            }
            batch = batch.saturating_mul(2);
        }
    }

    /// Benchmarks `f` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(f(setup())); // warm-up
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(f(input));
            self.total += start.elapsed();
            self.iters += 1;
            if self.total >= self.budget {
                break;
            }
        }
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let default_ms = if bench_mode { 200 } else { 0 };
        let ms = std::env::var("WEARLOCK_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its mean time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.budget,
            ..Bencher::default()
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_secs_f64() * 1e9 / b.iters as f64
        };
        println!("{id:<40} {mean_ns:>14.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion {
            budget: Duration::from_millis(0),
        };
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls >= 2); // warm-up + at least one measured call
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut b = Bencher::default();
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert!(setups >= 2);
        assert!(b.iters >= 1);
    }
}
