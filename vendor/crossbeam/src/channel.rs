//! MPMC channels with crossbeam-compatible names and semantics,
//! implemented over `std::sync` primitives.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    buf: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The sending half; clonable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clonable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error on send: every receiver is gone; the value comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error on blocking receive: every sender is gone and the buffer is
/// drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error on receive with a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived in time.
    Timeout,
    /// Every sender is gone and the buffer is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error on non-blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The buffer is currently empty.
    Empty,
    /// Every sender is gone and the buffer is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            buf: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// A channel holding at most `cap` queued messages; sends block while
/// full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    new_channel(Some(cap))
}

/// A channel with an unbounded buffer; sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] carrying the value when every receiver has
    /// been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            let full = inner.cap.is_some_and(|c| inner.buf.len() >= c);
            if !full {
                inner.buf.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders -= 1;
        if inner.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives, blocking until a message or disconnection.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when every sender is gone and the buffer
    /// is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = inner.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receives, blocking at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when nothing arrives in time,
    /// [`RecvTimeoutError::Disconnected`] when every sender is gone and
    /// the buffer is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = inner.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when the buffer is empty,
    /// [`TryRecvError::Disconnected`] when additionally every sender is
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = inner.buf.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers -= 1;
        if inner.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn roundtrip_in_order() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(10).unwrap();
        let t = thread::spawn(move || tx.send(20).unwrap());
        assert_eq!(rx.recv().unwrap(), 10);
        assert_eq!(rx.recv().unwrap(), 20);
        t.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_is_reported() {
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = bounded::<u8>(1);
        drop(rx2);
        assert_eq!(tx2.send(5), Err(SendError(5)));
    }

    #[test]
    fn multi_consumer_splits_work() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        let mut all = got;
        all.extend(h.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
