//! Offline stand-in for the `crossbeam` crate, implementing the
//! [`channel`] subset WearLock uses: multi-producer/multi-consumer
//! bounded and unbounded channels with blocking, timeout, and
//! disconnect semantics.
#![forbid(unsafe_code)]

pub mod channel;
