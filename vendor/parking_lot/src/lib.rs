//! Offline stand-in for `parking_lot`, wrapping `std::sync` primitives
//! behind parking_lot's poison-free API (the subset WearLock uses).
#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error: a panic while
/// holding the lock simply passes the data through, as in parking_lot.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
