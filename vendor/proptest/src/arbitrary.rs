//! `any::<T>()` — whole-domain strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng, StandardSample};

use crate::strategy::{Any, Strategy};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: StandardSample + Debug {}

impl Arbitrary for bool {}
impl Arbitrary for u8 {}
impl Arbitrary for u16 {}
impl Arbitrary for u32 {}
impl Arbitrary for u64 {}
impl Arbitrary for usize {}
impl Arbitrary for i8 {}
impl Arbitrary for i16 {}
impl Arbitrary for i32 {}
impl Arbitrary for i64 {}
impl Arbitrary for isize {}
impl Arbitrary for f64 {}
impl Arbitrary for f32 {}

/// The strategy generating any value of `T` (uniform over the domain;
/// floats draw from `[0, 1)` as with the vendored `rand`'s standard
/// distribution).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}
