//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

/// Generates `Vec`s of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates `BTreeSet`s of `element` values with a target size in
/// `size`. If the element domain is too small to reach the target, the
/// set is as large as a bounded number of draws allowed (upstream
/// proptest behaves the same way under rejection pressure).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < 16 + target * 16 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}
