//! Offline stand-in for the `proptest` crate, implementing the subset
//! of its API that WearLock's property tests use: the [`proptest!`]
//! macro, range/collection/sample strategies, `prop_map`/
//! `prop_flat_map`, `any::<T>()`, and the `prop_assert*`/`prop_assume!`
//! macros.
//!
//! Differences from upstream:
//! - **No shrinking.** A failing case reports its inputs and the
//!   deterministic per-case seed instead of a minimized example.
//! - **Deterministic by construction.** Case `i` of test `t` draws from
//!   `StdRng::seed_from_u64(fnv1a(t) ^ i)`, so failures reproduce
//!   exactly across runs and machines with no regression files.
//! - `proptest-regressions` files are ignored.
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-imported surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(
                __pt_config,
                concat!(module_path!(), "::", stringify!($name)),
                |__pt_rng| {
                    let mut __pt_inputs = String::new();
                    $(
                        let __pt_value =
                            $crate::strategy::Strategy::new_value(&($strat), __pt_rng);
                        {
                            use ::std::fmt::Write as _;
                            let _ = ::std::write!(
                                __pt_inputs,
                                "\n    {} = {:?}",
                                stringify!($arg),
                                &__pt_value
                            );
                        }
                        let $arg = __pt_value;
                    )+
                    let __pt_result = (|| -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    })();
                    match __pt_result {
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            Err($crate::test_runner::TestCaseError::Fail(format!(
                                "{msg}\n  inputs:{__pt_inputs}"
                            )))
                        }
                        other => other,
                    }
                },
            );
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the case with
/// the generated inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Discards the current case (regenerates fresh inputs) when an input
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
