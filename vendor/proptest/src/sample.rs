//! Sampling strategies over explicit value lists.

use std::fmt::Debug;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Picks uniformly from `values` (must be non-empty).
pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select: empty value list");
    Select { values }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.values[rng.gen_range(0..self.values.len())].clone()
    }
}
