//! The [`Strategy`] trait and its combinators.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// A recipe for generating values of one type. Unlike upstream
/// proptest, strategies here generate concrete values directly (no
/// value trees, no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

trait DynStrategy {
    type Value;
    fn dyn_new_value(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_new_value(&self, rng: &mut StdRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

impl<T: SampleUniform + Debug> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Debug> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);

/// A strategy yielding a PhantomData-tagged marker — used by
/// [`crate::arbitrary::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) PhantomData<T>);
