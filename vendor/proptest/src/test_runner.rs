//! The deterministic case runner behind [`crate::proptest!`].

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases (upstream's default), overridable with the
    /// `PROPTEST_CASES` environment variable.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message carries the details.
    Fail(String),
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a, used to give every test its own deterministic seed stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `case` until `config.cases` cases pass, panicking on the first
/// failure with the offending case's seed and inputs.
///
/// Case `i` uses `StdRng::seed_from_u64(fnv1a(name) ^ i)`: fully
/// deterministic per test and per case, independent of execution order
/// and thread count.
pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while passed < config.cases {
        let mut rng = StdRng::seed_from_u64(base ^ index);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= 65_536,
                    "{name}: too many prop_assume! rejections ({rejected}) — \
                     loosen the generator or the assumption"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case failed: {name} \
                     (case #{index}, seed {:#018x})\n  {msg}",
                    base ^ index
                );
            }
        }
        index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run(ProptestConfig::with_cases(10), "t::counts", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn rejections_do_not_count_as_cases() {
        let mut total = 0u32;
        let mut passed = 0u32;
        run(ProptestConfig::with_cases(5), "t::rejects", |_| {
            total += 1;
            if total.is_multiple_of(2) {
                passed += 1;
                Ok(())
            } else {
                Err(TestCaseError::Reject)
            }
        });
        assert_eq!(passed, 5);
        assert_eq!(total, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        run(ProptestConfig::with_cases(1), "t::fails", |_| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }
}
