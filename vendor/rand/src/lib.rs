//! Offline stand-in for the `rand` crate, implementing the subset of
//! its 0.8 API that WearLock uses: the [`Rng`]/[`RngCore`]/
//! [`SeedableRng`] traits, [`rngs::StdRng`], and [`rngs::mock::StepRng`].
//!
//! The build environment has no access to crates.io, so this vendored
//! crate keeps the workspace self-contained. The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — *not* the
//! ChaCha12 core of upstream `rand`, so seeded streams differ from
//! upstream bit-for-bit, but every stream is fully deterministic given
//! its seed, which is the property the reproduction relies on (see
//! DESIGN.md, "Determinism contract").
#![forbid(unsafe_code)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 pseudo-random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64 step — the standard seeding scramble for xoshiro.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (the subset of
/// `rand`'s `Standard` distribution WearLock uses).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Top bit: the strongest bit of weak generators like StepRng.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Scalars usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                // Lemire's multiply-shift: bias < span/2^64, far below
                // anything observable at the spans this workspace uses.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of any [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0..=4u32);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_full_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..=4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(13);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "trues {trues}");
    }
}
