//! Concrete generators: [`StdRng`] (xoshiro256++) and the testing
//! [`mock::StepRng`].

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator: xoshiro256++.
///
/// Not the ChaCha12 core of upstream `rand` — streams differ from
/// upstream for the same seed — but fast, high-quality, and fully
/// deterministic, which is what the reproduction's determinism contract
/// requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, public domain reference).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(b);
        }
        // The all-zero state is a fixed point of xoshiro; rescramble.
        if s == [0, 0, 0, 0] {
            let mut st = 0xdead_beef_cafe_f00du64;
            for word in s.iter_mut() {
                *word = crate::splitmix64(&mut st);
            }
        }
        StdRng { s }
    }
}

/// Mock generators for tests that need a fixed, transparent stream.
pub mod mock {
    use crate::RngCore;

    /// Returns `initial`, then adds `increment` after each draw —
    /// mirrors `rand::rngs::mock::StepRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StepRng {
        v: u64,
        increment: u64,
    }

    impl StepRng {
        /// A generator yielding `initial`, `initial + increment`, …
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                v: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.v;
            self.v = self.v.wrapping_add(self.increment);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mock::StepRng;
    use super::StdRng;
    use crate::{RngCore, SeedableRng};

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(5, 3);
        assert_eq!(r.next_u64(), 5);
        assert_eq!(r.next_u64(), 8);
        assert_eq!(r.next_u64(), 11);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::from_seed([0u8; 32]);
        let xs: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = StdRng::seed_from_u64(99);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
